#include "analysis/parallel_runner.hh"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "sim/logging.hh"

namespace lazygpu
{

unsigned
ParallelRunner::defaultJobs()
{
    if (const char *env = std::getenv("LAZYGPU_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        fatal_if(end == env || *end != '\0' || v == 0 || v > 4096,
                 "LAZYGPU_JOBS must be a positive integer, got '%s'",
                 env);
        return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
}

std::vector<RunResult>
ParallelRunner::run(const std::vector<RunJob> &batch) const
{
    std::vector<RunResult> results(batch.size());

    auto runOne = [&](std::size_t i) {
        Workload w = batch[i].make();
        results[i] = runWorkload(batch[i].cfg, w, batch[i].verify);
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, batch.size()));
    if (workers <= 1) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            runOne(i);
        return results;
    }

    // Dynamic work stealing off a shared index: grid points vary wildly
    // in cost (waves x sparsity), so static striping would leave threads
    // idle. Each worker writes only results[i] for the indices it claims.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch.size())
                return;
            runOne(i);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace lazygpu
