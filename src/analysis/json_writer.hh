/**
 * @file
 * Minimal deterministic JSON writer for the bench binaries.
 *
 * Each figure binary emits a machine-readable BENCH_<name>.json next to
 * its printed table so perf trajectories can be tracked across commits.
 * Objects preserve insertion order and numbers are formatted with a
 * fixed printf recipe, so the serialized bytes depend only on the values
 * — never on hash order or thread count.
 */

#ifndef LAZYGPU_ANALYSIS_JSON_WRITER_HH
#define LAZYGPU_ANALYSIS_JSON_WRITER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lazygpu
{

struct RunResult;

/** An order-preserving JSON value tree. */
class Json
{
  public:
    Json() = default;                       //!< null
    Json(bool b);
    Json(int v);
    Json(unsigned v);
    Json(std::uint64_t v);
    Json(double v);
    Json(const char *s);
    Json(std::string s);

    static Json object();
    static Json array();

    /**
     * A double serialized with %.17g instead of the display-precision
     * %.10g, so strtod() re-reads the exact bit pattern. Used by the
     * sweep journal, whose values must survive a write/parse round trip
     * byte-identically (--resume replays them into BENCH artifacts).
     */
    static Json exactNum(double v);

    /** Append/replace-nothing: keys are emitted in set() order. */
    Json &set(const std::string &key, Json value);

    /** Append an element to an array. */
    Json &push(Json value);

    /** Serialize; indent=0 is compact, otherwise pretty-printed. */
    std::string dump(unsigned indent = 2) const;

  private:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Uint,
        Num,
        NumExact, //!< %.17g round-trippable double (journal entries)
        Str,
        Arr,
        Obj,
    };

    void write(std::string &out, unsigned indent, unsigned depth) const;

    Kind kind_ = Kind::Null;
    bool b_ = false;
    std::int64_t i_ = 0;
    std::uint64_t u_ = 0;
    double d_ = 0.0;
    std::string s_;
    std::vector<Json> elems_;
    std::vector<std::pair<std::string, Json>> members_;
};

/**
 * The headline metrics of one run as a JSON object. Leads with the
 * run's status; an "error" member is appended only for failed cells,
 * so healthy rows serialize byte-identically whether or not the sweep
 * around them degraded.
 */
Json toJson(const RunResult &r);

/**
 * Write root (plus a "bench" name field injected at the front) to
 * BENCH_<bench>.json in the current directory. The document is written
 * to <path>.tmp and atomically rename()d into place, so a crash or
 * watchdog kill mid-write can never leave a truncated artifact.
 * Failures warn and continue: JSON artifacts must never break a bench
 * run.
 */
void writeBenchJson(const std::string &bench, const Json &root);

/**
 * Atomically write text to path (tmp file + rename).
 * @return false (after warning) when the file cannot be written.
 */
bool writeFileAtomic(const std::string &path, const std::string &text);

} // namespace lazygpu

#endif // LAZYGPU_ANALYSIS_JSON_WRITER_HH
