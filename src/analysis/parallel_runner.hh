/**
 * @file
 * ParallelRunner: execute a grid of independent simulations across a
 * thread pool, preserving submission order — and survive the cells
 * that fail.
 *
 * Every figure bench sweeps a (workload x mode x config) grid whose
 * points are embarrassingly parallel: each run builds a fresh Engine /
 * StatsRegistry / GlobalMemory via runWorkload, and all workload generation is
 * seeded through the per-instance Rng, so runs share no mutable state.
 * Because a Workload may only be run once (in-place kernels mutate their
 * inputs), jobs carry a *factory* and each worker materialises its own
 * instance.
 *
 * Fault isolation: workers run inside a RecoverableScope, so a panic()
 * or fatal() in one grid cell becomes a SimError recorded in that
 * cell's RunResult (status + error detail + crash report) instead of
 * process death. A watchdog thread cancels cells that exceed a
 * wall-clock budget or stop making engine progress (status Timeout).
 * Completed cells are journaled to a JSON-lines file as they finish;
 * `resume` restores the Ok cells from the journal and re-runs only the
 * missing/failed ones.
 *
 * Results are returned indexed by submission order regardless of thread
 * count, so tables and JSON artifacts are byte-identical between
 * --jobs 1 and --jobs N (and across clean / degraded / resumed runs for
 * the healthy cells).
 */

#ifndef LAZYGPU_ANALYSIS_PARALLEL_RUNNER_HH
#define LAZYGPU_ANALYSIS_PARALLEL_RUNNER_HH

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/harness.hh"

namespace lazygpu
{

class SweepJournal;

/** One grid point: a configuration plus a fresh-workload factory. */
struct RunJob
{
    GpuConfig cfg;
    std::function<Workload()> make;
    bool verify = false;
    /**
     * Stable identity for the journal, crash reports and fault
     * injection. Empty keys are auto-assigned "b<batch>/cell-<index>",
     * which is stable because batches are submitted deterministically.
     */
    std::string key = {};
    /** Free-form description (workload, seed) echoed in crash reports. */
    std::string note = {};
    /** Per-kernel livelock guard; 0 uses Gpu's default. */
    Tick limitCycles = 0;
    /**
     * Custom cell body (the fault campaign's clean + injected + classify
     * sequence). When set, it replaces the default make()/runWorkload
     * body but still runs inside the worker's RecoverableScope, watchdog
     * slot and journal bookkeeping: a panic/fatal inside it is recorded
     * against this cell, and its RunResult (including tag) is journaled
     * and restorable like any other. `cfg` arrives with the sweep-level
     * observability knobs already applied.
     */
    std::function<RunResult(const GpuConfig &cfg, ExecControl *ctl)>
        custom = {};
};

/** Fault-tolerance policy for a runner's sweeps. */
struct SweepOptions
{
    /**
     * false: the historical fail-fast contract — on the first failed
     * cell the runner stops claiming new cells, finishes in-flight
     * ones, journals, and run() terminates the process with exit 1.
     * true: degrade gracefully — failed cells are recorded with their
     * status and every healthy cell still produces its exact result.
     */
    bool keepGoing = false;
    /** Wall-clock budget per cell in seconds; 0 disables. */
    double timeoutSec = 0.0;
    /**
     * Cancel a cell whose engine heartbeat is frozen this long
     * (seconds); 0 disables. Only catches stalls that re-enter the
     * engine loop — a thread stuck outside the engine cannot observe
     * the cancel flag and falls to timeoutSec.
     */
    double stallSec = 0.0;
    /** JSON-lines journal of finished cells; empty disables. */
    std::string journalPath;
    /** Restore Ok cells from the journal instead of re-running them. */
    bool resume = false;
    /** Directory for per-cell crash reports; empty disables. */
    std::string crashDir;
    /** Bench name used to label crash reports. */
    std::string benchName;
    /** Fault injection (CI smoke): panic when this cell starts. */
    std::string injectPanicKey;
    /** Fault injection: replace this cell's workload with a spin loop. */
    std::string injectLivelockKey;
    /** Periodic "cells done/total, ETA" line on stderr. */
    bool progress = false;
    /** Print each cell's hierarchical stats report to stderr. */
    bool statsReport = false;
    /**
     * Multi-resolution sampling window applied to every cell
     * (--timing-waves): the first N wavefronts of each kernel run in
     * detailed timing, the rest in the functional rabbit executor.
     * GpuConfig::timingWavesAll (the default) disables sampling.
     */
    unsigned timingWaves = GpuConfig::timingWavesAll;
    /**
     * Intra-GPU domain threads applied to every cell (--sa-threads):
     * 0 keeps the classic single-domain engine; N >= 1 shards each
     * simulation across per-SA event domains driven by N threads
     * (results are independent of N; see GpuConfig::saThreads). When
     * composed with --jobs > 1, the runner clamps this to
     * hardware_concurrency / jobs so cell-level and intra-cell
     * parallelism do not oversubscribe the host.
     */
    unsigned saThreads = 0;
    /**
     * Write the traced cell's binary timeline to this file; empty
     * disables tracing. Tracing is observational (it never perturbs the
     * simulated outcome), so the traced cell's results stay identical.
     */
    std::string tracePath;
    /**
     * Which cell gets the trace; empty with a tracePath set traces the
     * first cell of the first batch. The traced cell is always re-run,
     * never restored from the journal, so a --trace --resume run still
     * produces the trace file.
     */
    std::string traceCellKey;
    /**
     * Dump one cell's full StatsRegistry as JSON to this file
     * (--stats-json); empty disables. Like tracing, the dump is
     * observational and never perturbs the dumped cell's results.
     */
    std::string statsJsonPath;
    /**
     * Which cell --stats-json dumps; empty with statsJsonPath set dumps
     * the first cell of the first batch. Like the traced cell, the
     * dumped cell is always re-run, never restored from the journal, so
     * a --stats-json --resume run still produces the file.
     */
    std::string statsCellKey;
};

/** What a sweep did, beyond the per-cell results. */
struct SweepOutcome
{
    std::vector<RunResult> results; //!< submission-order, one per job
    std::size_t numRestored = 0;    //!< Ok cells replayed from the journal
    std::size_t numFailed = 0;      //!< cells with status != Ok

    bool allOk() const { return numFailed == 0; }
};

class ParallelRunner
{
  public:
    /**
     * @param jobs worker threads; 0 resolves via defaultJobs()
     *        (LAZYGPU_JOBS env var, else hardware concurrency).
     * @param opts fault-tolerance policy applied to every sweep this
     *        runner executes.
     */
    explicit ParallelRunner(unsigned jobs = 0, SweepOptions opts = {});
    ~ParallelRunner();

    unsigned jobs() const { return jobs_; }
    const SweepOptions &options() const { return opts_; }

    /**
     * Run every job and return its RunResult at the job's submission
     * index. Without keepGoing, a failed cell terminates the process
     * (exit 1) after journaling, so callers may assume every returned
     * result is Ok; with keepGoing, failed cells come back with their
     * status set and zeroed metrics.
     */
    std::vector<RunResult> run(const std::vector<RunJob> &batch);

    /** Run a sweep and report restored/failed counts alongside. */
    SweepOutcome runSweep(const std::vector<RunJob> &batch);

    /** Failed cells accumulated across every sweep of this runner. */
    std::size_t failures() const { return failures_; }
    /** 1 when any cell of any sweep failed, else 0 (bench exit code). */
    int exitCode() const { return failures_ ? 1 : 0; }

    /** LAZYGPU_JOBS env var if set, else std::thread::hardware_concurrency. */
    static unsigned defaultJobs();

  private:
    unsigned jobs_;
    SweepOptions opts_;
    std::unique_ptr<SweepJournal> journal_;
    std::map<std::string, RunResult> restored_;
    bool journal_opened_ = false;
    std::size_t failures_ = 0;
    std::uint64_t batch_counter_ = 0;
};

} // namespace lazygpu

#endif // LAZYGPU_ANALYSIS_PARALLEL_RUNNER_HH
