/**
 * @file
 * ParallelRunner: execute a grid of independent simulations across a
 * thread pool, preserving submission order.
 *
 * Every figure bench sweeps a (workload x mode x config) grid whose
 * points are embarrassingly parallel: each run builds a fresh Engine /
 * StatSet / GlobalMemory via runWorkload, and all workload generation is
 * seeded through the per-instance Rng, so runs share no mutable state.
 * Because a Workload may only be run once (in-place kernels mutate their
 * inputs), jobs carry a *factory* and each worker materialises its own
 * instance.
 *
 * Results are returned indexed by submission order regardless of thread
 * count, so tables and JSON artifacts are byte-identical between
 * --jobs 1 and --jobs N.
 */

#ifndef LAZYGPU_ANALYSIS_PARALLEL_RUNNER_HH
#define LAZYGPU_ANALYSIS_PARALLEL_RUNNER_HH

#include <functional>
#include <vector>

#include "analysis/harness.hh"

namespace lazygpu
{

/** One grid point: a configuration plus a fresh-workload factory. */
struct RunJob
{
    GpuConfig cfg;
    std::function<Workload()> make;
    bool verify = false;
};

class ParallelRunner
{
  public:
    /**
     * @param jobs worker threads; 0 resolves via defaultJobs()
     *        (LAZYGPU_JOBS env var, else hardware concurrency).
     */
    explicit ParallelRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Run every job and return its RunResult at the job's submission
     * index. With one worker (or one job) everything runs inline on the
     * calling thread.
     */
    std::vector<RunResult> run(const std::vector<RunJob> &batch) const;

    /** LAZYGPU_JOBS env var if set, else std::thread::hardware_concurrency. */
    static unsigned defaultJobs();

  private:
    unsigned jobs_;
};

} // namespace lazygpu

#endif // LAZYGPU_ANALYSIS_PARALLEL_RUNNER_HH
