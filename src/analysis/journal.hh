/**
 * @file
 * Sweep journal: completed grid cells appended to a JSON-lines file.
 *
 * Each worker appends one self-contained line per finished cell (Ok or
 * failed) under a mutex with a single O_APPEND-style write, so the
 * journal is valid line-by-line even if the process dies mid-sweep.
 * `--resume` replays it: cells recorded as Ok are restored without
 * re-simulation (numeric fields round-trip exactly, so resumed BENCH
 * artifacts are byte-identical to a clean run) and failed/missing cells
 * are re-executed.
 */

#ifndef LAZYGPU_ANALYSIS_JOURNAL_HH
#define LAZYGPU_ANALYSIS_JOURNAL_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "analysis/harness.hh"

namespace lazygpu
{

class SweepJournal
{
  public:
    /**
     * Open path for appending. With append=false any existing journal
     * is truncated (a fresh sweep); with append=true (resume) new
     * entries extend the old ones — on load, later entries win.
     */
    SweepJournal(const std::string &path, bool append);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    bool ok() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

    /** Append one cell's outcome: one line, one write, flushed. */
    void append(const std::string &key, const RunResult &result);

    /**
     * Parse a journal into key -> result (later entries override
     * earlier ones). Unparseable lines — e.g. a torn final line from a
     * killed run — are skipped with a warning; a missing file yields an
     * empty map.
     */
    static std::map<std::string, RunResult>
    load(const std::string &path);

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
};

/** One journal line (no trailing newline); exposed for tests. */
std::string journalLine(const std::string &key, const RunResult &r);

/**
 * Parse one journal line.
 * @return false when the line is not a valid journal entry.
 */
bool parseJournalLine(const std::string &line, std::string &key,
                      RunResult &r);

} // namespace lazygpu

#endif // LAZYGPU_ANALYSIS_JOURNAL_HH
