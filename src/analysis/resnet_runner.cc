#include "analysis/resnet_runner.hh"

namespace lazygpu
{

ResnetOutcome
runResnet(const Resnet18 &net, const GpuConfig &cfg, bool training,
          bool verify, ParallelRunner *runner, const std::string &tag)
{
    std::vector<RunJob> jobs;
    jobs.reserve(net.specs().size());
    for (unsigned idx = 0; idx < net.specs().size(); ++idx) {
        RunJob job{cfg,
                   [&net, idx, training]() {
                       return net.layerWorkload(idx, training);
                   },
                   verify};
        if (!tag.empty()) {
            job.key = tag + "/layer-" + std::to_string(idx);
            job.note = net.specs()[idx].name +
                       (training ? " (training)" : " (inference)");
        }
        jobs.push_back(std::move(job));
    }

    ParallelRunner serial(1);
    std::vector<RunResult> layers =
        (runner ? *runner : serial).run(jobs);

    ResnetOutcome out;
    out.perLayer.reserve(layers.size());
    for (RunResult &r : layers) {
        out.total.accumulate(r);
        out.perLayer.push_back(std::move(r));
    }
    return out;
}

} // namespace lazygpu
