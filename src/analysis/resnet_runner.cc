#include "analysis/resnet_runner.hh"

namespace lazygpu
{

ResnetOutcome
runResnet(const Resnet18 &net, const GpuConfig &cfg, bool training,
          bool verify)
{
    ResnetOutcome out;
    for (unsigned idx = 0; idx < net.specs().size(); ++idx) {
        Workload w = net.layerWorkload(idx, training);
        RunResult r = runWorkload(cfg, w, verify);
        out.total.accumulate(r);
        out.perLayer.push_back(std::move(r));
    }
    return out;
}

} // namespace lazygpu
