/**
 * @file
 * Shared ResNet-18 experiment runner used by the Fig 9/10/13/14/15/16
 * bench binaries: simulate every evaluated layer under one
 * configuration (kernel-level sampling, as the paper does with Photon)
 * and aggregate. Layers are independent simulations, so a
 * ParallelRunner can spread them across worker threads; per-layer and
 * aggregate results are identical for any thread count.
 */

#ifndef LAZYGPU_ANALYSIS_RESNET_RUNNER_HH
#define LAZYGPU_ANALYSIS_RESNET_RUNNER_HH

#include <vector>

#include "analysis/harness.hh"
#include "analysis/parallel_runner.hh"
#include "workloads/resnet18.hh"

namespace lazygpu
{

struct ResnetOutcome
{
    std::vector<RunResult> perLayer;
    RunResult total; //!< accumulated across layers
};

/**
 * Run all 23 evaluated layers under cfg.
 *
 * @param training add the dW/dX GEMMs per conv layer.
 * @param verify   functionally check each layer (slower).
 * @param runner   spread layers over this pool (and inherit its
 *                 fault-tolerance policy); nullptr runs serially.
 * @param tag      cell-key prefix ("<tag>/layer-<idx>") so journal and
 *                 crash-report entries name the layer; empty keeps the
 *                 runner's auto-assigned batch keys.
 */
ResnetOutcome runResnet(const Resnet18 &net, const GpuConfig &cfg,
                        bool training, bool verify = false,
                        ParallelRunner *runner = nullptr,
                        const std::string &tag = "");

} // namespace lazygpu

#endif // LAZYGPU_ANALYSIS_RESNET_RUNNER_HH
