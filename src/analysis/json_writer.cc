#include "analysis/json_writer.hh"

#include <cmath>
#include <cstdio>
#include <utility>

#include "analysis/harness.hh"
#include "sim/logging.hh"

namespace lazygpu
{

Json::Json(bool b) : kind_(Kind::Bool), b_(b) {}
Json::Json(int v) : kind_(Kind::Int), i_(v) {}
Json::Json(unsigned v) : kind_(Kind::Uint), u_(v) {}
Json::Json(std::uint64_t v) : kind_(Kind::Uint), u_(v) {}
Json::Json(double v) : kind_(Kind::Num), d_(v) {}
Json::Json(const char *s) : kind_(Kind::Str), s_(s) {}
Json::Json(std::string s) : kind_(Kind::Str), s_(std::move(s)) {}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Obj;
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Arr;
    return j;
}

Json
Json::exactNum(double v)
{
    Json j(v);
    j.kind_ = Kind::NumExact;
    return j;
}

Json &
Json::set(const std::string &key, Json value)
{
    panic_if(kind_ != Kind::Obj, "Json::set on a non-object");
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    panic_if(kind_ != Kind::Arr, "Json::push on a non-array");
    elems_.push_back(std::move(value));
    return *this;
}

namespace
{

void
escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, unsigned indent, unsigned depth)
{
    if (indent == 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::write(std::string &out, unsigned indent, unsigned depth) const
{
    char buf[40];
    switch (kind_) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += b_ ? "true" : "false";
        break;
    case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(i_));
        out += buf;
        break;
    case Kind::Uint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(u_));
        out += buf;
        break;
    case Kind::Num:
    case Kind::NumExact:
        if (!std::isfinite(d_)) {
            // JSON5-style non-finite literals (what Python's json and
            // our reader accept); "null" would silently turn a poisoned
            // metric into a missing one and break round-tripping.
            out += std::isnan(d_) ? "NaN"
                                  : (d_ < 0 ? "-Infinity" : "Infinity");
        } else {
            std::snprintf(buf, sizeof(buf),
                          kind_ == Kind::NumExact ? "%.17g" : "%.10g",
                          d_);
            out += buf;
        }
        break;
    case Kind::Str:
        escapeInto(out, s_);
        break;
    case Kind::Arr:
        if (elems_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < elems_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            elems_[i].write(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        break;
    case Kind::Obj:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            escapeInto(out, members_[i].first);
            out += indent ? ": " : ":";
            members_[i].second.write(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(unsigned indent) const
{
    std::string out;
    write(out, indent, 0);
    return out;
}

Json
toJson(const RunResult &r)
{
    Json j = Json::object();
    j.set("status", toString(r.status));
    j.set("cycles", r.cycles)
        .set("txs_issued", r.txsIssued)
        .set("txs_elim_zero", r.txsElimZero)
        .set("txs_elim_otimes", r.txsElimOtimes)
        .set("txs_elim_dead", r.txsElimDead)
        .set("elimination_rate", r.eliminationRate())
        .set("l1_requests", r.l1Requests)
        .set("l2_requests", r.l2Requests)
        .set("dram_requests", r.dramRequests)
        .set("l1_hit_rate", r.l1HitRate())
        .set("l2_hit_rate", r.l2HitRate())
        .set("avg_mem_latency", r.avgMemLatency)
        .set("alu_utilization", r.aluUtilization);
    if (!r.error.empty())
        j.set("error", r.error);
    if (!r.tag.empty())
        j.set("tag", r.tag);
    return j;
}

bool
writeFileAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        warn("cannot write %s; skipping artifact", tmp.c_str());
        return false;
    }
    const std::size_t written = std::fwrite(text.data(), 1, text.size(),
                                            f);
    const bool flushed = std::fclose(f) == 0 && written == text.size();
    if (!flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot finalize %s; skipping artifact", path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

void
writeBenchJson(const std::string &bench, const Json &root)
{
    Json doc = Json::object();
    doc.set("bench", bench);
    doc.set("data", root);

    writeFileAtomic("BENCH_" + bench + ".json", doc.dump() + "\n");
}

} // namespace lazygpu
