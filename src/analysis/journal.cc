#include "analysis/journal.hh"

#include <fstream>

#include "analysis/json_reader.hh"
#include "analysis/json_writer.hh"
#include "sim/logging.hh"

namespace lazygpu
{

namespace
{

/**
 * Every RunResult field, exactly. Integers are exact by construction;
 * the two doubles use Json::exactNum so strtod() restores the bit
 * pattern and resumed BENCH rows serialize byte-identically.
 */
Json
resultToJson(const RunResult &r)
{
    Json j = Json::object();
    j.set("status", toString(r.status))
        .set("error", r.error)
        .set("cycles", r.cycles)
        .set("wall_ms", r.wallMs)
        .set("txs_issued", r.txsIssued)
        .set("txs_elim_zero", r.txsElimZero)
        .set("txs_elim_otimes", r.txsElimOtimes)
        .set("txs_elim_dead", r.txsElimDead)
        .set("txs_eager_fallback", r.txsEagerFallback)
        .set("store_txs", r.storeTxs)
        .set("store_txs_zero_skipped", r.storeTxsZeroSkipped)
        .set("l1_requests", r.l1Requests)
        .set("l2_requests", r.l2Requests)
        .set("dram_requests", r.dramRequests)
        .set("alu_utilization", Json::exactNum(r.aluUtilization))
        .set("avg_mem_latency", Json::exactNum(r.avgMemLatency))
        .set("l1_hits", r.l1Hits)
        .set("l1_misses", r.l1Misses)
        .set("l2_hits", r.l2Hits)
        .set("l2_misses", r.l2Misses)
        .set("zl1_hits", r.zl1Hits)
        .set("zl1_misses", r.zl1Misses)
        .set("zl2_hits", r.zl2Hits)
        .set("zl2_misses", r.zl2Misses)
        .set("verify_error", r.verifyError);
    if (!r.tag.empty())
        j.set("tag", r.tag);
    return j;
}

bool
resultFromJson(const JsonValue &j, RunResult &r)
{
    if (!j.isObject())
        return false;
    const JsonValue *status = j.find("status");
    if (!status ||
        !runStatusFromString(status->asString(), r.status))
        return false;
    auto str = [&](const char *key, std::string &out) {
        if (const JsonValue *v = j.find(key))
            out = v->asString();
    };
    auto u64 = [&](const char *key, std::uint64_t &out) {
        if (const JsonValue *v = j.find(key))
            out = v->asU64();
    };
    auto dbl = [&](const char *key, double &out) {
        if (const JsonValue *v = j.find(key))
            out = v->asDouble();
    };
    str("error", r.error);
    u64("cycles", r.cycles);
    u64("wall_ms", r.wallMs);
    u64("txs_issued", r.txsIssued);
    u64("txs_elim_zero", r.txsElimZero);
    u64("txs_elim_otimes", r.txsElimOtimes);
    u64("txs_elim_dead", r.txsElimDead);
    u64("txs_eager_fallback", r.txsEagerFallback);
    u64("store_txs", r.storeTxs);
    u64("store_txs_zero_skipped", r.storeTxsZeroSkipped);
    u64("l1_requests", r.l1Requests);
    u64("l2_requests", r.l2Requests);
    u64("dram_requests", r.dramRequests);
    dbl("alu_utilization", r.aluUtilization);
    dbl("avg_mem_latency", r.avgMemLatency);
    u64("l1_hits", r.l1Hits);
    u64("l1_misses", r.l1Misses);
    u64("l2_hits", r.l2Hits);
    u64("l2_misses", r.l2Misses);
    u64("zl1_hits", r.zl1Hits);
    u64("zl1_misses", r.zl1Misses);
    u64("zl2_hits", r.zl2Hits);
    u64("zl2_misses", r.zl2Misses);
    str("verify_error", r.verifyError);
    str("tag", r.tag);
    return true;
}

} // namespace

std::string
journalLine(const std::string &key, const RunResult &r)
{
    Json line = Json::object();
    line.set("key", key).set("result", resultToJson(r));
    return line.dump(0);
}

bool
parseJournalLine(const std::string &line, std::string &key, RunResult &r)
{
    JsonValue doc;
    if (!parseJson(line, doc) || !doc.isObject())
        return false;
    const JsonValue *k = doc.find("key");
    const JsonValue *result = doc.find("result");
    if (!k || k->kind != JsonValue::Kind::String || !result)
        return false;
    RunResult parsed;
    if (!resultFromJson(*result, parsed))
        return false;
    key = k->asString();
    r = parsed;
    return true;
}

SweepJournal::SweepJournal(const std::string &path, bool append)
    : path_(path)
{
    // A hard kill mid-append can leave the journal without a final
    // newline. Appending straight after would concatenate the first new
    // entry onto the torn line, corrupting both; terminate the torn
    // line first so only the half-written cell is lost.
    bool needs_newline = false;
    if (append) {
        if (std::FILE *old = std::fopen(path.c_str(), "rb")) {
            if (std::fseek(old, -1, SEEK_END) == 0)
                needs_newline = std::fgetc(old) != '\n';
            std::fclose(old);
        }
    }
    file_ = std::fopen(path.c_str(), append ? "a" : "w");
    if (!file_) {
        warn("cannot open sweep journal %s; continuing without one",
             path.c_str());
        return;
    }
    if (needs_newline) {
        warn("%s: journal ended mid-line (torn write from a killed "
             "run?); terminating it before appending",
             path.c_str());
        std::fputc('\n', file_);
        std::fflush(file_);
    }
}

SweepJournal::~SweepJournal()
{
    if (file_)
        std::fclose(file_);
}

void
SweepJournal::append(const std::string &key, const RunResult &result)
{
    if (!file_)
        return;
    const std::string line = journalLine(key, result) + "\n";
    std::lock_guard<std::mutex> lock(mutex_);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
}

std::map<std::string, RunResult>
SweepJournal::load(const std::string &path)
{
    std::map<std::string, RunResult> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::string line;
    unsigned lineno = 0, bad = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string key;
        RunResult r;
        if (parseJournalLine(line, key, r))
            out[key] = r;
        else
            ++bad;
    }
    if (bad)
        warn("%s: skipped %u unparseable journal line(s) of %u "
             "(torn write from a killed run?)",
             path.c_str(), bad, lineno);
    return out;
}

} // namespace lazygpu
