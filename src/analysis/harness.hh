/**
 * @file
 * Experiment harness helpers shared by the tests, benches and examples:
 * run a Workload on a configuration, collect the headline metrics, and
 * print paper-style tables.
 */

#ifndef LAZYGPU_ANALYSIS_HARNESS_HH
#define LAZYGPU_ANALYSIS_HARNESS_HH

#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "workloads/common.hh"

namespace lazygpu
{

struct ExecControl;

/** How a grid cell's simulation ended. */
enum class RunStatus : std::uint8_t
{
    Ok = 0,
    Panic,   //!< recoverable panic (simulator bug in this cell)
    Fatal,   //!< recoverable fatal (bad config / workload for this cell)
    Timeout, //!< watchdog cancelled the cell
};

/** "ok" / "panic" / "fatal" / "timeout". */
const char *toString(RunStatus s);

/** Inverse of toString; false when name is not a status. */
bool runStatusFromString(const std::string &name, RunStatus &out);

/** Aggregate outcome of running a workload on one configuration. */
struct RunResult
{
    RunStatus status = RunStatus::Ok;
    std::string error; //!< "message (file:line)" when status != Ok

    bool ok() const { return status == RunStatus::Ok; }

    Tick cycles = 0;
    /**
     * Host milliseconds spent simulating this cell. Journaled (it feeds
     * resumed sweeps' ETA estimates) but never part of BENCH artifacts,
     * which must stay machine-independent.
     */
    std::uint64_t wallMs = 0;
    std::uint64_t txsIssued = 0;
    std::uint64_t txsElimZero = 0;
    std::uint64_t txsElimOtimes = 0;
    std::uint64_t txsElimDead = 0;
    std::uint64_t txsEagerFallback = 0;
    std::uint64_t storeTxs = 0;
    std::uint64_t storeTxsZeroSkipped = 0;
    std::uint64_t l1Requests = 0;
    std::uint64_t l2Requests = 0;
    std::uint64_t dramRequests = 0;
    double aluUtilization = 0.0;
    double avgMemLatency = 0.0;
    std::uint64_t l1Hits = 0, l1Misses = 0;
    std::uint64_t l2Hits = 0, l2Misses = 0;
    std::uint64_t zl1Hits = 0, zl1Misses = 0;
    std::uint64_t zl2Hits = 0, zl2Misses = 0;
    std::string verifyError; //!< empty when functional check passed
    /**
     * Free-form classification label attached by custom cell bodies
     * (the fault campaign records its verdict — "masked", "sdc", ... —
     * here). Journaled and restored like every other field, but only
     * serialized when non-empty so artifacts without tags stay
     * byte-identical to builds that predate the field.
     */
    std::string tag;

    /** Fraction of candidate load transactions eliminated. */
    double eliminationRate() const;

    double l1HitRate() const { return rate(l1Hits, l1Misses); }
    double l2HitRate() const { return rate(l2Hits, l2Misses); }
    double zl1HitRate() const { return rate(zl1Hits, zl1Misses); }
    double zl2HitRate() const { return rate(zl2Hits, zl2Misses); }

    /** Accumulate another run's totals (per-layer aggregation). */
    void accumulate(const RunResult &other);

  private:
    static double
    rate(std::uint64_t hits, std::uint64_t misses)
    {
        return hits + misses
                   ? static_cast<double>(hits) / (hits + misses)
                   : 0.0;
    }
};

/**
 * Run every kernel of the workload on a fresh Gpu built from cfg.
 *
 * A Workload instance may be run only once: in-place kernels (FFT, NW,
 * BFS) mutate their inputs. Regenerate the workload (same seed gives an
 * identical image) for each configuration being compared.
 *
 * @param verify run the workload's functional check afterwards.
 * @param ctl optional watchdog channel attached to the engine for the
 *        duration of the run (heartbeat publishing + cancellation).
 * @param limit_cycles per-kernel livelock guard; 0 uses Gpu::run's
 *        default.
 */
RunResult runWorkload(const GpuConfig &cfg, Workload &w,
                      bool verify = true, ExecControl *ctl = nullptr,
                      Tick limit_cycles = 0);

/**
 * Harvest the headline metrics of a finished simulation into a
 * RunResult. `cycles` is supplied by the caller: runWorkload sums
 * estCycles across launches; the fault campaign uses total engine
 * time so its forked-and-resumed runs compare against straight-through
 * ones. Does not run the workload's functional verify.
 */
RunResult collectMetrics(Gpu &gpu, Tick cycles);

/**
 * speedup = cycles(base) / cycles(test); 0.0 when either run failed
 * (cells from a degraded sweep carry zero cycles).
 */
double speedup(const RunResult &base, const RunResult &test);

/** Format a markdown-ish table row; used by the bench binaries. */
std::string formatRow(const std::vector<std::string> &cells,
                      unsigned width = 12);

} // namespace lazygpu

#endif // LAZYGPU_ANALYSIS_HARNESS_HH
