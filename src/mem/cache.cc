#include "mem/cache.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace lazygpu
{

Cache::Cache(Engine &engine, StatsRegistry &stats, const std::string &name,
             const CacheParams &params, WritePolicy policy,
             MemDevice &below)
    : engine_(engine), name_(name), line_size_(params.lineSize),
      assoc_(params.assoc),
      num_sets_(std::max<unsigned>(
          1, params.size / (params.lineSize * params.assoc))),
      mshr_limit_(params.mshrs),
      bytes_per_cycle_(std::max(1u, params.bytesPerCycle)),
      latency_(params.latency), policy_(policy), below_(below),
      lines_(num_sets_ * assoc_),
      hits_(stats.counter(name + ".hits")),
      misses_(stats.counter(name + ".misses")),
      write_throughs_(stats.counter(name + ".write_throughs")),
      evictions_(stats.counter(name + ".evictions")),
      mshr_wait_(stats.dist(name + ".mshr_wait"))
{
    panic_if(params.size == 0, "%s: zero-sized cache instantiated",
             name.c_str());
}

std::uint64_t
Cache::setIndex(Addr line_addr) const
{
    return (line_addr / line_size_) % num_sets_;
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    Line *set = &lines_[setIndex(line_addr) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].tag == line_addr)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

Cache::Line &
Cache::victimLine(Addr line_addr)
{
    Line *set = &lines_[setIndex(line_addr) * assoc_];
    Line *victim = &set[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!set[w].valid)
            return set[w];
        if (set[w].lruStamp < victim->lruStamp)
            victim = &set[w];
    }
    return *victim;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(lineAddr(addr)) != nullptr;
}

bool
Cache::probe(Addr addr)
{
    if (Line *line = findLine(lineAddr(addr))) {
        line->lruStamp = ++lru_clock_;
        return true;
    }
    return false;
}

void
Cache::access(const MemAccess &acc, Completion done)
{
    // Transactions never straddle a line: they are <= 32 B and aligned.
    panic_if(lineAddr(acc.addr) != lineAddr(acc.addr + acc.size - 1),
             "%s: access straddles a cache line", name_.c_str());

    const Tick now = engine_.now();
    const Tick service = std::max<Tick>(
        1, (acc.size + bytes_per_cycle_ - 1) / bytes_per_cycle_);
    const Tick start = std::max(now, port_busy_);
    port_busy_ = start + service;

    if (start == now) {
        lookup(acc, std::move(done));
    } else {
        engine_.schedule(start, [this, acc, cb = std::move(done)]() mutable {
            lookup(acc, std::move(cb));
        });
    }
}

void
Cache::lookup(const MemAccess &acc, Completion done)
{
    if (acc.write)
        handleWrite(acc, std::move(done));
    else
        handleRead(lineAddr(acc.addr), std::move(done));
}

void
Cache::handleRead(Addr line_addr, Completion done)
{
    if (Line *line = findLine(line_addr)) {
        ++hits_;
        line->lruStamp = ++lru_clock_;
        if (done)
            engine_.scheduleIn(latency_, std::move(done));
        return;
    }
    ++misses_;

    if (auto it = mshrs_.find(line_addr); it != mshrs_.end()) {
        // Secondary miss: ride the outstanding fill.
        if (done)
            it->second.waiters.push_back(std::move(done));
        return;
    }

    if (mshrs_.size() >= mshr_limit_) {
        // Structural stall: this is the congestion LazyCore relieves.
        const Tick enq = engine_.now();
        pending_.emplace_back(
            MemAccess{line_addr, line_size_, false},
            [this, enq, cb = std::move(done)]() mutable {
                mshr_wait_.sample(
                    static_cast<double>(engine_.now() - enq));
                if (cb)
                    cb();
            });
        traceDepth();
        return;
    }

    Mshr &mshr = mshrs_[line_addr];
    if (done)
        mshr.waiters.push_back(std::move(done));
    traceDepth();
    below_.access(MemAccess{line_addr, line_size_, false},
                  [this, line_addr]() { fill(line_addr); });
}

void
Cache::handleWrite(const MemAccess &acc, Completion done)
{
    if (policy_ == WritePolicy::WriteAround) {
        // Writes bypass this level entirely; drop any stale local copy.
        if (Line *line = findLine(lineAddr(acc.addr)))
            line->valid = false;
        ++write_throughs_;
        below_.access(acc, std::move(done));
        return;
    }

    // Write-back, write-allocate.
    Addr la = lineAddr(acc.addr);
    if (Line *line = findLine(la)) {
        ++hits_;
        line->dirty = true;
        line->lruStamp = ++lru_clock_;
        if (done)
            engine_.scheduleIn(latency_, std::move(done));
        return;
    }
    ++misses_;

    auto mark_dirty = [this, la, cb = std::move(done)]() mutable {
        if (Line *line = findLine(la))
            line->dirty = true;
        if (cb)
            cb();
    };

    if (auto it = mshrs_.find(la); it != mshrs_.end()) {
        it->second.waiters.push_back(std::move(mark_dirty));
        return;
    }
    if (mshrs_.size() >= mshr_limit_) {
        // Structural stall: record the wait exactly like the read path so
        // the congestion distribution covers both request kinds.
        const Tick enq = engine_.now();
        pending_.emplace_back(
            MemAccess{acc.addr, acc.size, true},
            [this, enq, cb = std::move(mark_dirty)]() mutable {
                mshr_wait_.sample(
                    static_cast<double>(engine_.now() - enq));
                cb();
            });
        traceDepth();
        return;
    }
    Mshr &mshr = mshrs_[la];
    mshr.waiters.push_back(std::move(mark_dirty));
    traceDepth();
    below_.access(MemAccess{la, line_size_, false},
                  [this, la]() { fill(la); });
}

void
Cache::fill(Addr line_addr)
{
    Line &victim = victimLine(line_addr);
    if (victim.valid && victim.dirty) {
        ++evictions_;
        // Fire-and-forget writeback; it consumes downstream bandwidth.
        below_.access(MemAccess{victim.tag, line_size_, true}, nullptr);
    }
    victim.tag = line_addr;
    victim.valid = true;
    victim.dirty = false;
    victim.lruStamp = ++lru_clock_;

    auto it = mshrs_.find(line_addr);
    panic_if(it == mshrs_.end(), "%s: fill without an MSHR",
             name_.c_str());
    std::vector<Completion> waiters = std::move(it->second.waiters);
    mshrs_.erase(it);

    for (auto &w : waiters) {
        if (w)
            engine_.scheduleIn(latency_, std::move(w));
    }
    drainPending();
    traceDepth();
}

void
Cache::drainPending()
{
    while (!pending_.empty() && mshrs_.size() < mshr_limit_) {
        auto [acc, cb] = std::move(pending_.front());
        pending_.pop_front();
        lookup(acc, std::move(cb));
        // A pending hit or coalesce does not consume an MSHR, so keep
        // draining; the loop terminates because each iteration pops.
    }
}

void
Cache::checkpointTo(ByteWriter &w) const
{
    panic_if(!mshrs_.empty() || !pending_.empty(),
             "checkpointing cache '%s' with transactions in flight",
             name_.c_str());
    w.tag("CACH");
    w.u64(lru_clock_);
    w.u64(port_busy_);
    w.u64(lines_.size());
    std::uint64_t n_valid = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++n_valid;
    }
    w.u64(n_valid);
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const Line &line = lines_[i];
        if (!line.valid)
            continue;
        w.u64(i);
        w.u64(line.tag);
        w.u8(line.dirty ? 1 : 0);
        w.u64(line.lruStamp);
    }
}

void
Cache::restoreFrom(ByteReader &r)
{
    panic_if(!mshrs_.empty() || !pending_.empty(),
             "restoring cache '%s' with transactions in flight",
             name_.c_str());
    if (!r.tag("CACH"))
        return;
    lru_clock_ = r.u64();
    port_busy_ = r.u64();
    const std::uint64_t n_lines = r.u64();
    if (n_lines != lines_.size()) {
        // Geometry mismatch means the restoring Gpu was built from a
        // different configuration; the caller checks r.ok() and fatals.
        while (r.ok())
            r.u8();
        return;
    }
    for (Line &line : lines_)
        line = Line{};
    const std::uint64_t n_valid = r.u64();
    for (std::uint64_t i = 0; i < n_valid && r.ok(); ++i) {
        const std::uint64_t idx = r.u64();
        if (idx >= lines_.size())
            return;
        Line &line = lines_[idx];
        line.valid = true;
        line.tag = r.u64();
        line.dirty = r.u8() != 0;
        line.lruStamp = r.u64();
    }
}

} // namespace lazygpu
