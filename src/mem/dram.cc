#include "mem/dram.hh"

#include <algorithm>
#include <utility>

namespace lazygpu
{

DramChannel::DramChannel(Engine &engine, StatsRegistry &stats,
                         const std::string &name, unsigned bytes_per_cycle,
                         Tick access_latency)
    : engine_(engine), bytes_per_cycle_(std::max(1u, bytes_per_cycle)),
      access_latency_(access_latency),
      reads_(stats.counter(name + ".reads")),
      writes_(stats.counter(name + ".writes")),
      queue_delay_(stats.dist(name + ".queue_delay"))
{
}

void
DramChannel::access(const MemAccess &acc, Completion done)
{
    const Tick now = engine_.now();
    const Tick service =
        std::max<Tick>(1, (acc.size + bytes_per_cycle_ - 1) /
                              bytes_per_cycle_);
    const Tick start = std::max(now, busy_until_);
    busy_until_ = start + service;

    queue_delay_.sample(static_cast<double>(start - now));
    if (acc.write)
        ++writes_;
    else
        ++reads_;

    if (done) {
        engine_.schedule(start + service + access_latency_,
                         std::move(done));
    }
}

} // namespace lazygpu
