/**
 * @file
 * A set-associative, non-blocking, timing-only cache.
 *
 * Tags are modelled; data is not (function lives in GlobalMemory). The
 * cache supports the two policies the evaluated GPU uses: write-around
 * (L1 vector caches: writes bypass and invalidate) and write-back with
 * write-allocate (memory-side L2 banks). Misses allocate MSHRs with
 * same-line coalescing; when MSHRs are exhausted requests wait in a FIFO,
 * which is where the paper's queuing congestion comes from.
 */

#ifndef LAZYGPU_MEM_CACHE_HH
#define LAZYGPU_MEM_CACHE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/device.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/config.hh"
#include "sim/engine.hh"

namespace lazygpu
{

class Cache : public MemDevice
{
  public:
    enum class WritePolicy
    {
        WriteAround, //!< forward writes below; invalidate local copy
        WriteBack,   //!< write-allocate; dirty eviction writes below
    };

    Cache(Engine &engine, StatsRegistry &stats, const std::string &name,
          const CacheParams &params, WritePolicy policy,
          MemDevice &below);

    void access(const MemAccess &acc, Completion done) override;

    /**
     * Probe the tags without any side effects at all (testing and
     * introspection only; does not count as a use of the line).
     */
    bool contains(Addr addr) const;

    /**
     * Tag probe that counts as a use: when the line is present its LRU
     * recency is refreshed so actively probed lines are not evicted.
     * Used by the EagerZC model's concurrent L1 Zero Cache check.
     */
    bool probe(Addr addr);

    const std::string &name() const { return name_; }

    /**
     * True while the miss path is saturated: every MSHR is in use or
     * requests are already parked in the FIFO. Used by cycle accounting
     * to split memory-bound CU stalls into latency vs backpressure.
     */
    bool
    saturated() const
    {
        return mshrs_.size() >= mshr_limit_ || !pending_.empty();
    }

    /** Sample MSHR/pending occupancy into `trace` as track `track`. */
    void
    attachTrace(TraceSink *trace, std::uint16_t track)
    {
        trace_ = trace;
        track_ = track;
    }

    /**
     * Serialize the resumable tag-array state (valid lines, LRU clock,
     * port occupancy). Only legal while the cache is transaction-
     * quiescent — no MSHRs and no parked requests — which holds at the
     * engine-idle kernel boundaries where checkpoints are taken.
     */
    void checkpointTo(ByteWriter &w) const;

    /** Restore state saved by checkpointTo into this (idle) cache. */
    void restoreFrom(ByteReader &r);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    struct Mshr
    {
        Addr lineAddr = 0;
        std::vector<Completion> waiters;
    };

    Addr lineAddr(Addr a) const { return a & ~Addr(line_size_ - 1); }
    std::uint64_t setIndex(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    Line &victimLine(Addr line_addr);

    /** Start the tag lookup once the port accepts the request. */
    void lookup(const MemAccess &acc, Completion done);
    void handleRead(Addr line_addr, Completion done);
    void handleWrite(const MemAccess &acc, Completion done);
    void fill(Addr line_addr);
    void drainPending();

    /** Occupancy changed: one depth record when tracing is attached. */
    void
    traceDepth()
    {
        if (trace_) {
            trace_->emit(TraceKind::CacheDepth, track_, 0,
                         engine_.now(), mshrs_.size(), pending_.size());
        }
    }

    Engine &engine_;
    const std::string name_;
    const unsigned line_size_;
    const unsigned assoc_;
    const unsigned num_sets_;
    const unsigned mshr_limit_;
    const unsigned bytes_per_cycle_;
    const Tick latency_;
    const WritePolicy policy_;
    MemDevice &below_;

    std::vector<Line> lines_; //!< num_sets_ x assoc_
    std::unordered_map<Addr, Mshr> mshrs_;
    std::deque<std::pair<MemAccess, Completion>> pending_;
    Tick port_busy_ = 0;
    std::uint64_t lru_clock_ = 0;
    TraceSink *trace_ = nullptr;
    std::uint16_t track_ = 0;

    Counter &hits_;
    Counter &misses_;
    Counter &write_throughs_;
    Counter &evictions_;
    Distribution &mshr_wait_;
};

} // namespace lazygpu

#endif // LAZYGPU_MEM_CACHE_HH
