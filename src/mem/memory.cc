#include "mem/memory.hh"

#include "sim/logging.hh"

namespace lazygpu
{

Addr
GlobalMemory::alloc(std::uint64_t size, std::uint64_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "alignment must be a power of two");
    next_alloc_ = (next_alloc_ + align - 1) & ~(align - 1);
    Addr base = next_alloc_;
    next_alloc_ += size;
    fatal_if(next_alloc_ >= maskBase,
             "workload footprint collides with the mask shadow region");
    return base;
}

const std::uint8_t *
GlobalMemory::pageForMiss(Addr key) const
{
    auto it = pages_.find(key);
    const std::uint8_t *page =
        it == pages_.end() ? nullptr : it->second.data();
    cached_key_ = key;
    cached_page_ = page;
    return page;
}

std::uint8_t *
GlobalMemory::pageForWrite(Addr a)
{
    const Addr key = a >> pageShift;
    auto &page = pages_[key];
    if (page.empty())
        page.assign(pageSize, 0);
    // Refresh the read cache: this page may have been cached as absent.
    cached_key_ = key;
    cached_page_ = page.data();
    return page.data();
}

std::uint32_t
GlobalMemory::readU32Straddle(Addr a) const
{
    // Words may straddle pages; the byte path is the simple, correct one.
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(readByte(a + i)) << (8 * i);
    return v;
}

void
GlobalMemory::writeU32Straddle(Addr a, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        writeByte(a + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

float
GlobalMemory::readF32(Addr a) const
{
    std::uint32_t bits = readU32(a);
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

void
GlobalMemory::writeF32(Addr a, float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    writeU32(a, bits);
}

void
GlobalMemory::writeF32Array(Addr a, const std::vector<float> &vals)
{
    for (std::uint64_t i = 0; i < vals.size(); ++i)
        writeF32(a + 4 * i, vals[i]);
}

void
GlobalMemory::writeU32Array(Addr a, const std::vector<std::uint32_t> &vals)
{
    for (std::uint64_t i = 0; i < vals.size(); ++i)
        writeU32(a + 4 * i, vals[i]);
}

std::vector<float>
GlobalMemory::readF32Array(Addr a, std::uint64_t count) const
{
    std::vector<float> out(count);
    for (std::uint64_t i = 0; i < count; ++i)
        out[i] = readF32(a + 4 * i);
    return out;
}

std::uint8_t
GlobalMemory::zeroMaskByte(Addr a) const
{
    Addr block = a & ~Addr(transactionSize - 1);
    std::uint8_t mask = 0;
    for (unsigned w = 0; w < transactionSize / maskGranularity; ++w) {
        if (isZeroWord(block + w * maskGranularity))
            mask |= static_cast<std::uint8_t>(1u << w);
    }
    return mask;
}

} // namespace lazygpu
