#include "mem/memory.hh"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "sim/logging.hh"

namespace lazygpu
{

namespace
{

/**
 * Concurrent-mode page cache epoch. Every setConcurrent(true) stamps the
 * GlobalMemory with a fresh epoch from this counter, and per-thread
 * cache entries are only valid for the epoch they were filled under —
 * a worker thread reused across sweep jobs can therefore never serve a
 * page pointer from a previous job's (destroyed) GlobalMemory, even if
 * the new instance landed at the same address.
 */
std::atomic<std::uint64_t> g_concurrent_epoch{0};

struct ThreadPageCache
{
    std::uint64_t epoch = 0;
    Addr key = ~Addr(0);
    std::uint8_t *page = nullptr; //!< always a materialised buffer
};

thread_local ThreadPageCache t_page_cache;

} // namespace

void
GlobalMemory::setConcurrent(bool on)
{
    concurrent_ = on;
    if (on)
        concurrent_epoch_ =
            g_concurrent_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
    // Invalidate the shared one-entry cache both ways: entering, so the
    // single-thread fast path never hits while sharded domains run;
    // leaving, because pages materialised concurrently may have been
    // cached as absent.
    cached_key_ = ~Addr(0);
    cached_page_ = nullptr;
}

const std::uint8_t *
GlobalMemory::pageForConcurrent(Addr key) const
{
    ThreadPageCache &c = t_page_cache;
    if (c.epoch == concurrent_epoch_ && c.key == key)
        return c.page;
    std::shared_lock lk(pages_mutex_);
    auto it = pages_.find(key);
    if (it == pages_.end())
        return nullptr; // absent pages are never cached per-thread
    // Safe to cache: page buffers never move once materialised.
    std::uint8_t *page = const_cast<std::uint8_t *>(it->second.data());
    c = {concurrent_epoch_, key, page};
    return page;
}

std::uint8_t *
GlobalMemory::pageForWriteConcurrent(Addr key)
{
    ThreadPageCache &c = t_page_cache;
    if (c.epoch == concurrent_epoch_ && c.key == key)
        return c.page;
    {
        std::shared_lock lk(pages_mutex_);
        auto it = pages_.find(key);
        if (it != pages_.end()) {
            std::uint8_t *page = it->second.data();
            c = {concurrent_epoch_, key, page};
            return page;
        }
    }
    std::unique_lock lk(pages_mutex_);
    auto &page = pages_[key];
    if (page.empty())
        page.assign(pageSize, 0);
    c = {concurrent_epoch_, key, page.data()};
    return page.data();
}

Addr
GlobalMemory::alloc(std::uint64_t size, std::uint64_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "alignment must be a power of two");
    next_alloc_ = (next_alloc_ + align - 1) & ~(align - 1);
    Addr base = next_alloc_;
    next_alloc_ += size;
    fatal_if(next_alloc_ >= maskBase,
             "workload footprint collides with the mask shadow region");
    return base;
}

const std::uint8_t *
GlobalMemory::pageForMiss(Addr key) const
{
    auto it = pages_.find(key);
    const std::uint8_t *page =
        it == pages_.end() ? nullptr : it->second.data();
    cached_key_ = key;
    cached_page_ = page;
    return page;
}

std::uint8_t *
GlobalMemory::pageForWriteMiss(Addr key)
{
    auto &page = pages_[key];
    if (page.empty())
        page.assign(pageSize, 0);
    // Refresh the read cache: this page may have been cached as absent.
    cached_key_ = key;
    cached_page_ = page.data();
    return page.data();
}

std::uint32_t
GlobalMemory::readU32Straddle(Addr a) const
{
    // Words may straddle pages; the byte path is the simple, correct one.
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(readByte(a + i)) << (8 * i);
    return v;
}

void
GlobalMemory::writeU32Straddle(Addr a, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        writeByte(a + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

float
GlobalMemory::readF32(Addr a) const
{
    std::uint32_t bits = readU32(a);
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

void
GlobalMemory::writeF32(Addr a, float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    writeU32(a, bits);
}

void
GlobalMemory::writeF32Array(Addr a, const std::vector<float> &vals)
{
    for (std::uint64_t i = 0; i < vals.size(); ++i)
        writeF32(a + 4 * i, vals[i]);
}

void
GlobalMemory::writeU32Array(Addr a, const std::vector<std::uint32_t> &vals)
{
    for (std::uint64_t i = 0; i < vals.size(); ++i)
        writeU32(a + 4 * i, vals[i]);
}

std::vector<float>
GlobalMemory::readF32Array(Addr a, std::uint64_t count) const
{
    std::vector<float> out(count);
    for (std::uint64_t i = 0; i < count; ++i)
        out[i] = readF32(a + 4 * i);
    return out;
}

namespace
{

bool
allZero(const std::vector<std::uint8_t> &page)
{
    for (std::uint8_t b : page) {
        if (b)
            return false;
    }
    return true;
}

/** Non-zero page keys in ascending order (deterministic traversal). */
std::vector<Addr>
sortedPageKeys(const std::unordered_map<Addr, std::vector<std::uint8_t>>
                   &pages)
{
    std::vector<Addr> keys;
    keys.reserve(pages.size());
    for (const auto &[key, page] : pages) {
        if (!allZero(page))
            keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

void
GlobalMemory::checkpointTo(ByteWriter &w) const
{
    w.tag("GMEM");
    w.u64(next_alloc_);
    const std::vector<Addr> keys = sortedPageKeys(pages_);
    w.u64(keys.size());
    for (Addr key : keys) {
        w.u64(key);
        w.bytes(pages_.at(key).data(), pageSize);
    }
}

void
GlobalMemory::restoreFrom(ByteReader &r)
{
    if (!r.tag("GMEM"))
        return;
    pages_.clear();
    cached_key_ = ~Addr(0);
    cached_page_ = nullptr;
    next_alloc_ = r.u64();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        const Addr key = r.u64();
        std::vector<std::uint8_t> page(pageSize);
        if (!r.bytes(page.data(), pageSize))
            return;
        pages_.emplace(key, std::move(page));
    }
}

std::uint64_t
GlobalMemory::contentHash() const
{
    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    const auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull; // FNV prime
        }
    };
    for (Addr key : sortedPageKeys(pages_)) {
        mix(key);
        const std::vector<std::uint8_t> &page = pages_.at(key);
        for (std::uint8_t b : page) {
            h ^= b;
            h *= 1099511628211ull;
        }
    }
    return h;
}

std::uint8_t
GlobalMemory::zeroMaskByte(Addr a) const
{
    Addr block = a & ~Addr(transactionSize - 1);
    std::uint8_t mask = 0;
    for (unsigned w = 0; w < transactionSize / maskGranularity; ++w) {
        if (isZeroWord(block + w * maskGranularity))
            mask |= static_cast<std::uint8_t>(1u << w);
    }
    return mask;
}

} // namespace lazygpu
