/**
 * @file
 * MemoryHierarchy: wires the evaluated machine's memory system together.
 *
 * Per shader array: an L1 vector cache and (when configured) an L1 Zero
 * Cache. Memory-side: a crossbar router that interleaves addresses across
 * the banked L2s (and L2 Zero Caches), each bank backed by its own DRAM
 * channel. Mask (zero-cache) traffic shares the DRAM channels with data,
 * as in the paper.
 */

#ifndef LAZYGPU_MEM_HIERARCHY_HH
#define LAZYGPU_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/device.hh"
#include "mem/dram.hh"
#include "mem/memory.hh"
#include "sim/config.hh"
#include "sim/engine.hh"
#include "obs/registry.hh"

namespace lazygpu
{

class DomainScheduler;

/** Routes an access to the L2 bank owning its address. */
class BankRouter : public MemDevice
{
  public:
    BankRouter(Engine &engine, unsigned interleave,
               unsigned bytes_per_cycle);

    void addBank(MemDevice *bank) { banks_.push_back(bank); }

    void access(const MemAccess &acc, Completion done) override;

    /**
     * Reserve the aggregate ingress port for an access arriving at
     * `when`: returns the serialised start tick and advances the port.
     * In the sharded engine this runs at the window barrier, once per
     * request in the fixed merge order, so the shared port state stays
     * deterministic for any thread count.
     */
    Tick arbitrate(Tick when, unsigned size);

    unsigned bankFor(Addr addr) const;
    MemDevice *bank(unsigned b) { return banks_[b]; }

    /** Checkpoint access: the ingress port's busy high-water mark. */
    Tick portBusy() const { return port_busy_; }
    void restorePortBusy(Tick t) { port_busy_ = t; }

  private:
    Engine &engine_;
    std::vector<MemDevice *> banks_;
    const unsigned interleave_;
    const unsigned bytes_per_cycle_;
    Tick port_busy_ = 0;
};

class MemoryHierarchy
{
  public:
    /**
     * Classic mode (domains == nullptr): every cache and DRAM channel
     * schedules on `engine`. Sharded mode: L1s/ZL1s live on their SA's
     * domain engine with the scheduler's boundary ports below them,
     * L2/ZL2 bank b and DRAM channel b live on bank domain b, and the
     * bank routers arbitrate at the window barrier (DESIGN.md §13).
     */
    MemoryHierarchy(Engine &engine, StatsRegistry &stats, const GpuConfig &cfg,
                    GlobalMemory &mem, DomainScheduler *domains = nullptr);

    /** Issue a data transaction from shader array sa. */
    void accessData(unsigned sa, Addr addr, unsigned size, bool write,
                    Completion done);

    /**
     * Issue a zero-mask transaction from shader array sa. The mask
     * address space is GlobalMemory::maskAddr(data address).
     */
    void accessMask(unsigned sa, Addr mask_addr, bool write,
                    Completion done);

    /**
     * Tag probe of the SA's L1 Zero Cache (EagerZC's concurrent check).
     * A hit refreshes the line's LRU recency.
     */
    bool maskResidentInL1(unsigned sa, Addr mask_addr);

    bool hasZeroCaches() const { return !l1_zero_.empty(); }

    /**
     * Route every cache's occupancy records into `trace`, appending one
     * track name per cache to `tracks` (the index in `tracks` is the
     * record's track id; the Gpu embeds the list in the trace meta).
     */
    void attachTrace(TraceSink *trace, std::vector<std::string> &tracks);

    /**
     * Serialize every cache's tag state plus the DRAM-channel and
     * router port occupancy, in fixed declaration order. Part of the
     * Gpu checkpoint (DESIGN.md §15); only legal while the hierarchy is
     * transaction-quiescent (engine idle).
     */
    void checkpointTo(ByteWriter &w) const;

    /** Restore state saved by checkpointTo into this idle hierarchy. */
    void restoreFrom(ByteReader &r);

    Cache &l1(unsigned sa) { return *l1_[sa]; }
    Cache &l2(unsigned bank) { return *l2_[bank]; }
    Cache &l1Zero(unsigned sa) { return *l1_zero_[sa]; }
    Cache &l2Zero(unsigned bank) { return *l2_zero_[bank]; }
    unsigned numL2Banks() const { return static_cast<unsigned>(l2_.size()); }

  private:
    GlobalMemory &mem_;
    std::vector<std::unique_ptr<DramChannel>> dram_;
    std::unique_ptr<BankRouter> l2_router_;
    std::unique_ptr<BankRouter> zc_router_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l2_zero_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l1_zero_;
};

} // namespace lazygpu

#endif // LAZYGPU_MEM_HIERARCHY_HH
