/**
 * @file
 * A DRAM channel: first-come-first-served with bandwidth occupancy.
 *
 * Each L2 bank owns one channel. Service is modelled as a busy window of
 * ceil(size / bytesPerCycle) cycles per transaction plus the fixed access
 * latency; queuing latency under bursts is emergent from the busy window
 * racing ahead of the request arrival times (the effect Fig 2a shows).
 */

#ifndef LAZYGPU_MEM_DRAM_HH
#define LAZYGPU_MEM_DRAM_HH

#include <string>

#include "mem/device.hh"
#include "sim/engine.hh"
#include "obs/registry.hh"

namespace lazygpu
{

class DramChannel : public MemDevice
{
  public:
    DramChannel(Engine &engine, StatsRegistry &stats, const std::string &name,
                unsigned bytes_per_cycle, Tick access_latency);

    void access(const MemAccess &acc, Completion done) override;

    /** Checkpoint access: the channel's busy-window high-water mark. */
    Tick busyUntil() const { return busy_until_; }
    void restoreBusyUntil(Tick t) { busy_until_ = t; }

  private:
    Engine &engine_;
    Tick busy_until_ = 0;
    const unsigned bytes_per_cycle_;
    const Tick access_latency_;

    Counter &reads_;
    Counter &writes_;
    Distribution &queue_delay_;
};

} // namespace lazygpu

#endif // LAZYGPU_MEM_DRAM_HH
