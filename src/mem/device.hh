/**
 * @file
 * The timing-side memory interface shared by caches, crossbars and DRAM.
 */

#ifndef LAZYGPU_MEM_DEVICE_HH
#define LAZYGPU_MEM_DEVICE_HH

#include <functional>

#include "sim/types.hh"

namespace lazygpu
{

/** One timing access (reads and writes; data moves functionally). */
struct MemAccess
{
    Addr addr = 0;
    unsigned size = transactionSize;
    bool write = false;
};

/** Invoked when an access completes at the requesting level. */
using Completion = std::function<void()>;

/**
 * Anything a request can be sent to. Completion fires when the access
 * has been serviced (including all queuing below this device).
 */
class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    virtual void access(const MemAccess &acc, Completion done) = 0;
};

} // namespace lazygpu

#endif // LAZYGPU_MEM_DEVICE_HH
