#include "mem/hierarchy.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace lazygpu
{

BankRouter::BankRouter(Engine &engine, unsigned interleave,
                       unsigned bytes_per_cycle)
    : engine_(engine), interleave_(interleave),
      bytes_per_cycle_(std::max(1u, bytes_per_cycle))
{
}

unsigned
BankRouter::bankFor(Addr addr) const
{
    return static_cast<unsigned>((addr / interleave_) % banks_.size());
}

void
BankRouter::access(const MemAccess &acc, Completion done)
{
    panic_if(banks_.empty(), "router has no banks");

    // Crossbar occupancy: the aggregate ingress port serialises bursts.
    const Tick now = engine_.now();
    const Tick service = std::max<Tick>(
        1, (acc.size + bytes_per_cycle_ - 1) / bytes_per_cycle_);
    const Tick start = std::max(now, port_busy_);
    port_busy_ = start + service;

    MemDevice *bank = banks_[bankFor(acc.addr)];
    if (start == now) {
        bank->access(acc, std::move(done));
    } else {
        engine_.schedule(start,
                         [bank, acc, cb = std::move(done)]() mutable {
                             bank->access(acc, std::move(cb));
                         });
    }
}

MemoryHierarchy::MemoryHierarchy(Engine &engine, StatsRegistry &stats,
                                 const GpuConfig &cfg, GlobalMemory &mem)
    : mem_(mem)
{
    const bool zero_caches = cfg.l1Zero.size > 0 && cfg.l2Zero.size > 0;

    // One DRAM channel per L2 bank.
    for (unsigned b = 0; b < cfg.l2Banks; ++b) {
        dram_.push_back(std::make_unique<DramChannel>(
            engine, stats, "mem.dram.ch" + std::to_string(b),
            cfg.dramBytesPerCycle, cfg.dramLatency));
    }

    // Memory-side L2 banks and their router.
    l2_router_ = std::make_unique<BankRouter>(
        engine, cfg.interleave, cfg.l2.bytesPerCycle * cfg.l2Banks);
    for (unsigned b = 0; b < cfg.l2Banks; ++b) {
        CacheParams p = cfg.l2;
        p.latency = cfg.l2HopLatency;
        l2_.push_back(std::make_unique<Cache>(
            engine, stats, "mem.l2.bank" + std::to_string(b), p,
            Cache::WritePolicy::WriteBack, *dram_[b]));
        l2_router_->addBank(l2_[b].get());
    }

    if (zero_caches) {
        zc_router_ = std::make_unique<BankRouter>(
            engine, cfg.interleave,
            cfg.l2Zero.bytesPerCycle * cfg.l2Banks);
        for (unsigned b = 0; b < cfg.l2Banks; ++b) {
            CacheParams p = cfg.l2Zero;
            p.latency = cfg.l2HopLatency;
            l2_zero_.push_back(std::make_unique<Cache>(
                engine, stats, "mem.zl2.bank" + std::to_string(b), p,
                Cache::WritePolicy::WriteBack, *dram_[b]));
            zc_router_->addBank(l2_zero_[b].get());
        }
    }

    // Core-side L1s, one per shader array.
    for (unsigned sa = 0; sa < cfg.numShaderArrays; ++sa) {
        CacheParams p = cfg.l1;
        p.latency = cfg.l1HitLatency;
        l1_.push_back(std::make_unique<Cache>(
            engine, stats, "mem.l1.sa" + std::to_string(sa), p,
            Cache::WritePolicy::WriteAround, *l2_router_));
        if (zero_caches) {
            CacheParams zp = cfg.l1Zero;
            zp.latency = cfg.zcacheHitLatency;
            l1_zero_.push_back(std::make_unique<Cache>(
                engine, stats, "mem.zl1.sa" + std::to_string(sa), zp,
                Cache::WritePolicy::WriteAround, *zc_router_));
        }
    }
}

void
MemoryHierarchy::attachTrace(TraceSink *trace,
                             std::vector<std::string> &tracks)
{
    auto attach = [&](std::vector<std::unique_ptr<Cache>> &caches) {
        for (auto &c : caches) {
            c->attachTrace(trace,
                           static_cast<std::uint16_t>(tracks.size()));
            tracks.push_back(c->name());
        }
    };
    attach(l1_);
    attach(l1_zero_);
    attach(l2_);
    attach(l2_zero_);
}

void
MemoryHierarchy::accessData(unsigned sa, Addr addr, unsigned size,
                            bool write, Completion done)
{
    panic_if(sa >= l1_.size(), "shader array %u out of range", sa);
    l1_[sa]->access(MemAccess{addr, size, write}, std::move(done));
}

void
MemoryHierarchy::accessMask(unsigned sa, Addr mask_addr, bool write,
                            Completion done)
{
    panic_if(l1_zero_.empty(),
             "mask access on a configuration without Zero Caches");
    l1_zero_[sa]->access(MemAccess{mask_addr, transactionSize, write},
                         std::move(done));
}

bool
MemoryHierarchy::maskResidentInL1(unsigned sa, Addr mask_addr)
{
    if (l1_zero_.empty())
        return false;
    // A successful probe is a real use of the mask line: refresh its LRU
    // recency so hot masks are not evicted while under active reuse.
    return l1_zero_[sa]->probe(mask_addr);
}

} // namespace lazygpu
