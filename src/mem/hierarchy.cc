#include "mem/hierarchy.hh"

#include <algorithm>
#include <utility>

#include "sim/domains.hh"
#include "sim/logging.hh"

namespace lazygpu
{

BankRouter::BankRouter(Engine &engine, unsigned interleave,
                       unsigned bytes_per_cycle)
    : engine_(engine), interleave_(interleave),
      bytes_per_cycle_(std::max(1u, bytes_per_cycle))
{
}

unsigned
BankRouter::bankFor(Addr addr) const
{
    return static_cast<unsigned>((addr / interleave_) % banks_.size());
}

Tick
BankRouter::arbitrate(Tick when, unsigned size)
{
    // Crossbar occupancy: the aggregate ingress port serialises bursts.
    const Tick service = std::max<Tick>(
        1, (size + bytes_per_cycle_ - 1) / bytes_per_cycle_);
    const Tick start = std::max(when, port_busy_);
    port_busy_ = start + service;
    return start;
}

void
BankRouter::access(const MemAccess &acc, Completion done)
{
    panic_if(banks_.empty(), "router has no banks");

    const Tick now = engine_.now();
    const Tick start = arbitrate(now, acc.size);

    MemDevice *bank = banks_[bankFor(acc.addr)];
    if (start == now) {
        bank->access(acc, std::move(done));
    } else {
        engine_.schedule(start,
                         [bank, acc, cb = std::move(done)]() mutable {
                             bank->access(acc, std::move(cb));
                         });
    }
}

MemoryHierarchy::MemoryHierarchy(Engine &engine, StatsRegistry &stats,
                                 const GpuConfig &cfg, GlobalMemory &mem,
                                 DomainScheduler *domains)
    : mem_(mem)
{
    const bool zero_caches = cfg.l1Zero.size > 0 && cfg.l2Zero.size > 0;

    // Engine placement: classic mode puts everything on the single
    // engine; sharded mode puts L2/ZL2 bank b and DRAM channel b on
    // bank domain b, and L1/ZL1 of SA s on SA domain s.
    auto bankEngine = [&](unsigned b) -> Engine & {
        return domains ? domains->bankEngine(b) : engine;
    };

    // One DRAM channel per L2 bank.
    for (unsigned b = 0; b < cfg.l2Banks; ++b) {
        dram_.push_back(std::make_unique<DramChannel>(
            bankEngine(b), stats, "mem.dram.ch" + std::to_string(b),
            cfg.dramBytesPerCycle, cfg.dramLatency));
    }

    // Memory-side L2 banks and their router. Sharded mode moves the
    // L1->L2 hop latency off the cache and onto the response crossing
    // (the lookahead the scheduler adds in respond()): per-path timing
    // is identical, and the request-side injection happens at the same
    // arbitrated start tick the classic router would use.
    const Tick l2_latency = domains ? 0 : cfg.l2HopLatency;
    l2_router_ = std::make_unique<BankRouter>(
        engine, cfg.interleave, cfg.l2.bytesPerCycle * cfg.l2Banks);
    for (unsigned b = 0; b < cfg.l2Banks; ++b) {
        CacheParams p = cfg.l2;
        p.latency = l2_latency;
        l2_.push_back(std::make_unique<Cache>(
            bankEngine(b), stats, "mem.l2.bank" + std::to_string(b), p,
            Cache::WritePolicy::WriteBack, *dram_[b]));
        l2_router_->addBank(l2_[b].get());
    }

    if (zero_caches) {
        zc_router_ = std::make_unique<BankRouter>(
            engine, cfg.interleave,
            cfg.l2Zero.bytesPerCycle * cfg.l2Banks);
        for (unsigned b = 0; b < cfg.l2Banks; ++b) {
            CacheParams p = cfg.l2Zero;
            p.latency = l2_latency;
            l2_zero_.push_back(std::make_unique<Cache>(
                bankEngine(b), stats, "mem.zl2.bank" + std::to_string(b),
                p, Cache::WritePolicy::WriteBack, *dram_[b]));
            zc_router_->addBank(l2_zero_[b].get());
        }
    }

    // Sharded mode: the routers' access() path is replaced by boundary
    // channels. A router function runs on the coordinator at the window
    // barrier, arbitrates the shared ingress port in the fixed merge
    // order, and injects the access into the owning bank's domain.
    unsigned data_router = 0;
    unsigned mask_router = 0;
    if (domains) {
        data_router = domains->addRouter(
            [this, domains](unsigned sa, Tick when, const MemAccess &acc,
                            Completion &&done) {
                const Tick start = l2_router_->arbitrate(when, acc.size);
                const unsigned b = l2_router_->bankFor(acc.addr);
                domains->injectBank(b, start, l2_[b].get(), acc, sa,
                                    std::move(done));
            });
        if (zero_caches) {
            mask_router = domains->addRouter(
                [this, domains](unsigned sa, Tick when,
                                const MemAccess &acc, Completion &&done) {
                    const Tick start =
                        zc_router_->arbitrate(when, acc.size);
                    const unsigned b = zc_router_->bankFor(acc.addr);
                    domains->injectBank(b, start, l2_zero_[b].get(), acc,
                                        sa, std::move(done));
                });
        }
    }

    // Core-side L1s, one per shader array.
    for (unsigned sa = 0; sa < cfg.numShaderArrays; ++sa) {
        Engine &sa_engine = domains ? domains->saEngine(sa) : engine;
        MemDevice &l1_below =
            domains ? domains->port(sa, data_router) : *l2_router_;
        CacheParams p = cfg.l1;
        p.latency = cfg.l1HitLatency;
        l1_.push_back(std::make_unique<Cache>(
            sa_engine, stats, "mem.l1.sa" + std::to_string(sa), p,
            Cache::WritePolicy::WriteAround, l1_below));
        if (zero_caches) {
            MemDevice &zl1_below =
                domains ? domains->port(sa, mask_router) : *zc_router_;
            CacheParams zp = cfg.l1Zero;
            zp.latency = cfg.zcacheHitLatency;
            l1_zero_.push_back(std::make_unique<Cache>(
                sa_engine, stats, "mem.zl1.sa" + std::to_string(sa), zp,
                Cache::WritePolicy::WriteAround, zl1_below));
        }
    }
}

void
MemoryHierarchy::attachTrace(TraceSink *trace,
                             std::vector<std::string> &tracks)
{
    auto attach = [&](std::vector<std::unique_ptr<Cache>> &caches) {
        for (auto &c : caches) {
            c->attachTrace(trace,
                           static_cast<std::uint16_t>(tracks.size()));
            tracks.push_back(c->name());
        }
    };
    attach(l1_);
    attach(l1_zero_);
    attach(l2_);
    attach(l2_zero_);
}

void
MemoryHierarchy::accessData(unsigned sa, Addr addr, unsigned size,
                            bool write, Completion done)
{
    panic_if(sa >= l1_.size(), "shader array %u out of range", sa);
    l1_[sa]->access(MemAccess{addr, size, write}, std::move(done));
}

void
MemoryHierarchy::accessMask(unsigned sa, Addr mask_addr, bool write,
                            Completion done)
{
    panic_if(l1_zero_.empty(),
             "mask access on a configuration without Zero Caches");
    l1_zero_[sa]->access(MemAccess{mask_addr, transactionSize, write},
                         std::move(done));
}

void
MemoryHierarchy::checkpointTo(ByteWriter &w) const
{
    w.tag("HIER");
    const auto caches = [&w](const std::vector<std::unique_ptr<Cache>>
                                 &level) {
        w.u64(level.size());
        for (const auto &c : level)
            c->checkpointTo(w);
    };
    caches(l1_);
    caches(l1_zero_);
    caches(l2_);
    caches(l2_zero_);
    w.u64(dram_.size());
    for (const auto &d : dram_)
        w.u64(d->busyUntil());
    w.u64(l2_router_ ? l2_router_->portBusy() : 0);
    w.u64(zc_router_ ? zc_router_->portBusy() : 0);
}

void
MemoryHierarchy::restoreFrom(ByteReader &r)
{
    if (!r.tag("HIER"))
        return;
    const auto caches = [&r](const std::vector<std::unique_ptr<Cache>>
                                 &level) {
        if (r.u64() != level.size())
            return false;
        for (const auto &c : level)
            c->restoreFrom(r);
        return true;
    };
    if (!caches(l1_) || !caches(l1_zero_) || !caches(l2_) ||
        !caches(l2_zero_)) {
        fatal("checkpoint cache geometry does not match this "
              "configuration");
    }
    fatal_if(r.u64() != dram_.size(),
             "checkpoint DRAM geometry does not match this configuration");
    for (const auto &d : dram_)
        d->restoreBusyUntil(r.u64());
    const Tick l2_port = r.u64();
    const Tick zc_port = r.u64();
    if (l2_router_)
        l2_router_->restorePortBusy(l2_port);
    if (zc_router_)
        zc_router_->restorePortBusy(zc_port);
}

bool
MemoryHierarchy::maskResidentInL1(unsigned sa, Addr mask_addr)
{
    if (l1_zero_.empty())
        return false;
    // A successful probe is a real use of the mask line: refresh its LRU
    // recency so hot masks are not evicted while under active reuse.
    return l1_zero_[sa]->probe(mask_addr);
}

} // namespace lazygpu
