/**
 * @file
 * GlobalMemory: the functional backing store of the simulated GPU.
 *
 * Timing and function are decoupled: caches and DRAM model *when* data
 * moves, GlobalMemory holds *what* the data is. It is paged so workloads
 * can use sparse 64-bit address spaces, provides a bump allocator for
 * buffers, and serves the zero-mask queries the Zero Caches are built on
 * (one mask bit per aligned 4-byte word).
 */

#ifndef LAZYGPU_MEM_MEMORY_HH
#define LAZYGPU_MEM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/serialize.hh"
#include "sim/types.hh"

namespace lazygpu
{

class GlobalMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = Addr(1) << pageShift;

    // Copyable/movable (the verifier snapshots memory images). The
    // concurrency guard is per-instance state, not data: a copy gets
    // its own fresh mutex and starts in single-thread mode with a cold
    // cache. Only copy while no simulation thread is inside an accessor.
    GlobalMemory() = default;
    GlobalMemory(const GlobalMemory &o)
        : pages_(o.pages_), next_alloc_(o.next_alloc_)
    {
    }
    GlobalMemory(GlobalMemory &&o) noexcept
        : pages_(std::move(o.pages_)), next_alloc_(o.next_alloc_)
    {
    }
    GlobalMemory &
    operator=(const GlobalMemory &o)
    {
        pages_ = o.pages_;
        next_alloc_ = o.next_alloc_;
        cached_key_ = ~Addr(0);
        cached_page_ = nullptr;
        concurrent_ = false;
        return *this;
    }
    GlobalMemory &
    operator=(GlobalMemory &&o) noexcept
    {
        pages_ = std::move(o.pages_);
        next_alloc_ = o.next_alloc_;
        cached_key_ = ~Addr(0);
        cached_page_ = nullptr;
        concurrent_ = false;
        return *this;
    }

    /** Allocate size bytes, aligned to align (power of two). */
    Addr alloc(std::uint64_t size, std::uint64_t align = 256);

    // The byte/word accessors sit on the simulator's hottest path (every
    // functional register fill and zero-mask probe lands here), so they
    // are inline fast paths over a one-entry page cache: consecutive
    // accesses to the same 4 KiB page skip the hash lookup entirely.
    // Little-endian word layout, matching the byte-at-a-time definition
    // (all supported hosts are little-endian, so memcpy is equivalent).

    std::uint8_t
    readByte(Addr a) const
    {
        const std::uint8_t *page = pageFor(a);
        return page ? page[a & (pageSize - 1)] : 0;
    }

    void writeByte(Addr a, std::uint8_t v)
    {
        pageForWrite(a)[a & (pageSize - 1)] = v;
    }

    std::uint32_t
    readU32(Addr a) const
    {
        const Addr off = a & (pageSize - 1);
        if (off + 4 <= pageSize) {
            const std::uint8_t *page = pageFor(a);
            if (!page)
                return 0; // untouched pages read as zero
            std::uint32_t v;
            std::memcpy(&v, page + off, sizeof(v));
            return v;
        }
        return readU32Straddle(a);
    }

    void
    writeU32(Addr a, std::uint32_t v)
    {
        const Addr off = a & (pageSize - 1);
        if (off + 4 <= pageSize) {
            std::memcpy(pageForWrite(a) + off, &v, sizeof(v));
            return;
        }
        writeU32Straddle(a, v);
    }

    /**
     * The page buffer holding addr, or nullptr when the page is
     * untouched (reads as zero). For callers resolving many words of
     * one transaction: a transactionSize-aligned block never straddles
     * a page (transactionSize divides pageSize), so one lookup covers
     * every word that starts inside the block. The pointer stays valid
     * as documented on the page cache below.
     */
    const std::uint8_t *pageForSpan(Addr a) const { return pageFor(a); }

    /**
     * Writable counterpart of pageForSpan: the (materialised) page
     * buffer holding addr, for bulk writers that have already checked
     * their whole span stays inside one page.
     */
    std::uint8_t *pageForSpanWrite(Addr a) { return pageForWrite(a); }

    float readF32(Addr a) const;
    void writeF32(Addr a, float v);

    /** Bulk helpers for workload initialisation. */
    void writeF32Array(Addr a, const std::vector<float> &vals);
    void writeU32Array(Addr a, const std::vector<std::uint32_t> &vals);
    std::vector<float> readF32Array(Addr a, std::uint64_t count) const;

    /** True iff the aligned 4-byte word containing a is all zero. */
    bool
    isZeroWord(Addr a) const
    {
        return readU32(a & ~Addr(maskGranularity - 1)) == 0;
    }

    /**
     * The zero mask byte for the 32 B block containing a: bit i set iff
     * word i of the block is all zero.
     */
    std::uint8_t zeroMaskByte(Addr a) const;

    /** Total bytes handed out by the allocator. */
    std::uint64_t footprint() const { return next_alloc_ - allocBase; }

    /**
     * Serialize the full functional image (allocator cursor + every
     * non-zero page, in ascending page order). All-zero pages are
     * skipped: an untouched page and a materialised page of zeros read
     * identically, so the encoding — like contentHash() — depends only
     * on content, never on which pages happen to be materialised.
     */
    void checkpointTo(ByteWriter &w) const;

    /** Restore an image saved by checkpointTo, replacing all content. */
    void restoreFrom(ByteReader &r);

    /**
     * Order- and materialisation-independent FNV-1a hash of the whole
     * image (the fault campaign's output-divergence test).
     */
    std::uint64_t contentHash() const;

    /**
     * Toggle concurrent-access mode (the sharded engine's SA domains
     * read and write functional state from multiple threads). While
     * enabled, the shared one-entry page cache is bypassed in favour of
     * a per-thread cache and the page table itself is guarded by a
     * reader/writer lock; page buffers never move once materialised, so
     * cached data pointers stay valid across materialisations.
     * Disabling invalidates the shared cache (pages materialised
     * concurrently may have been cached as absent). Only call while no
     * simulation thread is inside an accessor.
     */
    void setConcurrent(bool on);

    /** Base of the heap; fixed so kernels get stable addresses. */
    static constexpr Addr allocBase = 0x10000000ull;

    /**
     * Base of the shadow mask region. One mask byte per 32 data bytes:
     * maskAddr(a) = maskBase + a / 32.
     */
    static constexpr Addr maskBase = Addr(1) << 40;

    static Addr
    maskAddr(Addr data_addr)
    {
        return maskBase + data_addr / transactionSize;
    }

    static bool isMaskAddr(Addr a) { return a >= maskBase; }

    /** The data address whose mask lives at mask address a. */
    static Addr
    maskedDataAddr(Addr mask_addr)
    {
        return (mask_addr - maskBase) * transactionSize;
    }

  private:
    /**
     * One-entry page cache in front of the page table. Page buffers are
     * never freed or reallocated once materialised (pages_ values are
     * only ever assigned once, and a rehash moves the vector objects,
     * not their heap buffers), so a cached data() pointer stays valid;
     * pageForWrite refreshes the entry when it materialises a page that
     * may have been cached as absent. NOT thread-safe for concurrent
     * readers of one GlobalMemory -- fine here because every parallel
     * job owns its own instance.
     */
    const std::uint8_t *
    pageFor(Addr a) const
    {
        const Addr key = a >> pageShift;
        // In concurrent mode cached_key_ is pinned to ~0 (no real page
        // key reaches it), so the shared-cache fast path never hits and
        // the lookup routes through the per-thread cache.
        if (key == cached_key_)
            return cached_page_;
        if (concurrent_)
            return pageForConcurrent(key);
        return pageForMiss(key);
    }

    const std::uint8_t *pageForMiss(Addr key) const;
    const std::uint8_t *pageForConcurrent(Addr key) const;
    std::uint8_t *
    pageForWrite(Addr a)
    {
        const Addr key = a >> pageShift;
        if (concurrent_)
            return pageForWriteConcurrent(key);
        return pageForWriteMiss(key);
    }
    std::uint8_t *pageForWriteMiss(Addr key);
    std::uint8_t *pageForWriteConcurrent(Addr key);
    std::uint32_t readU32Straddle(Addr a) const;
    void writeU32Straddle(Addr a, std::uint32_t v);

    // Untouched pages read as zero without being materialised.
    std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
    Addr next_alloc_ = allocBase;

    mutable Addr cached_key_ = ~Addr(0);
    mutable const std::uint8_t *cached_page_ = nullptr;

    // Concurrent mode (sharded engine): the page table is guarded by a
    // reader/writer lock and each thread keeps its own one-entry cache,
    // validated against a global epoch stamped per setConcurrent(true)
    // so entries can never dangle into a later simulation's memory.
    bool concurrent_ = false;
    std::uint64_t concurrent_epoch_ = 0;
    mutable std::shared_mutex pages_mutex_;
};

} // namespace lazygpu

#endif // LAZYGPU_MEM_MEMORY_HH
