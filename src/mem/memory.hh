/**
 * @file
 * GlobalMemory: the functional backing store of the simulated GPU.
 *
 * Timing and function are decoupled: caches and DRAM model *when* data
 * moves, GlobalMemory holds *what* the data is. It is paged so workloads
 * can use sparse 64-bit address spaces, provides a bump allocator for
 * buffers, and serves the zero-mask queries the Zero Caches are built on
 * (one mask bit per aligned 4-byte word).
 */

#ifndef LAZYGPU_MEM_MEMORY_HH
#define LAZYGPU_MEM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace lazygpu
{

class GlobalMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = Addr(1) << pageShift;

    /** Allocate size bytes, aligned to align (power of two). */
    Addr alloc(std::uint64_t size, std::uint64_t align = 256);

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    std::uint32_t readU32(Addr a) const;
    void writeU32(Addr a, std::uint32_t v);

    float readF32(Addr a) const;
    void writeF32(Addr a, float v);

    /** Bulk helpers for workload initialisation. */
    void writeF32Array(Addr a, const std::vector<float> &vals);
    void writeU32Array(Addr a, const std::vector<std::uint32_t> &vals);
    std::vector<float> readF32Array(Addr a, std::uint64_t count) const;

    /** True iff the aligned 4-byte word containing a is all zero. */
    bool isZeroWord(Addr a) const;

    /**
     * The zero mask byte for the 32 B block containing a: bit i set iff
     * word i of the block is all zero.
     */
    std::uint8_t zeroMaskByte(Addr a) const;

    /** Total bytes handed out by the allocator. */
    std::uint64_t footprint() const { return next_alloc_ - allocBase; }

    /** Base of the heap; fixed so kernels get stable addresses. */
    static constexpr Addr allocBase = 0x10000000ull;

    /**
     * Base of the shadow mask region. One mask byte per 32 data bytes:
     * maskAddr(a) = maskBase + a / 32.
     */
    static constexpr Addr maskBase = Addr(1) << 40;

    static Addr
    maskAddr(Addr data_addr)
    {
        return maskBase + data_addr / transactionSize;
    }

    static bool isMaskAddr(Addr a) { return a >= maskBase; }

    /** The data address whose mask lives at mask address a. */
    static Addr
    maskedDataAddr(Addr mask_addr)
    {
        return (mask_addr - maskBase) * transactionSize;
    }

  private:
    const std::uint8_t *pageFor(Addr a) const;
    std::uint8_t *pageForWrite(Addr a);

    // Untouched pages read as zero without being materialised.
    std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
    Addr next_alloc_ = allocBase;
};

} // namespace lazygpu

#endif // LAZYGPU_MEM_MEMORY_HH
