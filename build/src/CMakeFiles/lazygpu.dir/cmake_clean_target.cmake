file(REMOVE_RECURSE
  "liblazygpu.a"
)
