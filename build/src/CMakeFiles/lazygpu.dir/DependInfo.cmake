
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/harness.cc" "src/CMakeFiles/lazygpu.dir/analysis/harness.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/analysis/harness.cc.o.d"
  "/root/repo/src/analysis/resnet_runner.cc" "src/CMakeFiles/lazygpu.dir/analysis/resnet_runner.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/analysis/resnet_runner.cc.o.d"
  "/root/repo/src/core/overhead.cc" "src/CMakeFiles/lazygpu.dir/core/overhead.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/core/overhead.cc.o.d"
  "/root/repo/src/gpu/coalescer.cc" "src/CMakeFiles/lazygpu.dir/gpu/coalescer.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/gpu/coalescer.cc.o.d"
  "/root/repo/src/gpu/compute_unit.cc" "src/CMakeFiles/lazygpu.dir/gpu/compute_unit.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/gpu/compute_unit.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/lazygpu.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/wavefront.cc" "src/CMakeFiles/lazygpu.dir/gpu/wavefront.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/gpu/wavefront.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/CMakeFiles/lazygpu.dir/isa/encoding.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/isa/encoding.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/lazygpu.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/kernel.cc" "src/CMakeFiles/lazygpu.dir/isa/kernel.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/isa/kernel.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/lazygpu.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/isa/opcode.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/lazygpu.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/lazygpu.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/lazygpu.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/CMakeFiles/lazygpu.dir/mem/memory.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/mem/memory.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/lazygpu.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/lazygpu.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/lazygpu.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/lazygpu.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/sim/stats.cc.o.d"
  "/root/repo/src/workloads/common.cc" "src/CMakeFiles/lazygpu.dir/workloads/common.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/workloads/common.cc.o.d"
  "/root/repo/src/workloads/gemm.cc" "src/CMakeFiles/lazygpu.dir/workloads/gemm.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/workloads/gemm.cc.o.d"
  "/root/repo/src/workloads/llama.cc" "src/CMakeFiles/lazygpu.dir/workloads/llama.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/workloads/llama.cc.o.d"
  "/root/repo/src/workloads/pruning.cc" "src/CMakeFiles/lazygpu.dir/workloads/pruning.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/workloads/pruning.cc.o.d"
  "/root/repo/src/workloads/resnet18.cc" "src/CMakeFiles/lazygpu.dir/workloads/resnet18.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/workloads/resnet18.cc.o.d"
  "/root/repo/src/workloads/suite_linalg.cc" "src/CMakeFiles/lazygpu.dir/workloads/suite_linalg.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/workloads/suite_linalg.cc.o.d"
  "/root/repo/src/workloads/suite_misc.cc" "src/CMakeFiles/lazygpu.dir/workloads/suite_misc.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/workloads/suite_misc.cc.o.d"
  "/root/repo/src/workloads/suite_registry.cc" "src/CMakeFiles/lazygpu.dir/workloads/suite_registry.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/workloads/suite_registry.cc.o.d"
  "/root/repo/src/workloads/suite_stream.cc" "src/CMakeFiles/lazygpu.dir/workloads/suite_stream.cc.o" "gcc" "src/CMakeFiles/lazygpu.dir/workloads/suite_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
