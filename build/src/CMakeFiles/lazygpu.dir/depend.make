# Empty dependencies file for lazygpu.
# This may be replaced when dependencies are built.
