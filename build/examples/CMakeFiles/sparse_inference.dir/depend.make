# Empty dependencies file for sparse_inference.
# This may be replaced when dependencies are built.
