file(REMOVE_RECURSE
  "CMakeFiles/sparse_inference.dir/sparse_inference.cc.o"
  "CMakeFiles/sparse_inference.dir/sparse_inference.cc.o.d"
  "sparse_inference"
  "sparse_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
