# Empty compiler generated dependencies file for lazygpu_sim.
# This may be replaced when dependencies are built.
