file(REMOVE_RECURSE
  "CMakeFiles/lazygpu_sim.dir/lazygpu_sim.cc.o"
  "CMakeFiles/lazygpu_sim.dir/lazygpu_sim.cc.o.d"
  "lazygpu_sim"
  "lazygpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazygpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
