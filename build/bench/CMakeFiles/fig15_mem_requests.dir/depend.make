# Empty dependencies file for fig15_mem_requests.
# This may be replaced when dependencies are built.
