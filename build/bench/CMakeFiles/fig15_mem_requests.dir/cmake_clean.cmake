file(REMOVE_RECURSE
  "CMakeFiles/fig15_mem_requests.dir/fig15_mem_requests.cc.o"
  "CMakeFiles/fig15_mem_requests.dir/fig15_mem_requests.cc.o.d"
  "fig15_mem_requests"
  "fig15_mem_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_mem_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
