file(REMOVE_RECURSE
  "CMakeFiles/fig02_mm_trace.dir/fig02_mm_trace.cc.o"
  "CMakeFiles/fig02_mm_trace.dir/fig02_mm_trace.cc.o.d"
  "fig02_mm_trace"
  "fig02_mm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_mm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
