# Empty compiler generated dependencies file for fig10_resnet_sweep.
# This may be replaced when dependencies are built.
