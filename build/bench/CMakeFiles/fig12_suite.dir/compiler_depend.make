# Empty compiler generated dependencies file for fig12_suite.
# This may be replaced when dependencies are built.
