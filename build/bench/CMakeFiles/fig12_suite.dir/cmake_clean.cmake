file(REMOVE_RECURSE
  "CMakeFiles/fig12_suite.dir/fig12_suite.cc.o"
  "CMakeFiles/fig12_suite.dir/fig12_suite.cc.o.d"
  "fig12_suite"
  "fig12_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
