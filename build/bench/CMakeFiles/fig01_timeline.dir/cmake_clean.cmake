file(REMOVE_RECURSE
  "CMakeFiles/fig01_timeline.dir/fig01_timeline.cc.o"
  "CMakeFiles/fig01_timeline.dir/fig01_timeline.cc.o.d"
  "fig01_timeline"
  "fig01_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
