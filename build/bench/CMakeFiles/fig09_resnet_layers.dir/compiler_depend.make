# Empty compiler generated dependencies file for fig09_resnet_layers.
# This may be replaced when dependencies are built.
