file(REMOVE_RECURSE
  "CMakeFiles/fig09_resnet_layers.dir/fig09_resnet_layers.cc.o"
  "CMakeFiles/fig09_resnet_layers.dir/fig09_resnet_layers.cc.o.d"
  "fig09_resnet_layers"
  "fig09_resnet_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_resnet_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
