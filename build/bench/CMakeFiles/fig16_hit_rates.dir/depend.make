# Empty dependencies file for fig16_hit_rates.
# This may be replaced when dependencies are built.
