file(REMOVE_RECURSE
  "CMakeFiles/fig11_llama.dir/fig11_llama.cc.o"
  "CMakeFiles/fig11_llama.dir/fig11_llama.cc.o.d"
  "fig11_llama"
  "fig11_llama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_llama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
