# Empty dependencies file for fig11_llama.
# This may be replaced when dependencies are built.
