file(REMOVE_RECURSE
  "CMakeFiles/fig13_cache_ablation.dir/fig13_cache_ablation.cc.o"
  "CMakeFiles/fig13_cache_ablation.dir/fig13_cache_ablation.cc.o.d"
  "fig13_cache_ablation"
  "fig13_cache_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cache_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
