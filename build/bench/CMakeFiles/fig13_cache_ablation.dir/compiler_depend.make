# Empty compiler generated dependencies file for fig13_cache_ablation.
# This may be replaced when dependencies are built.
