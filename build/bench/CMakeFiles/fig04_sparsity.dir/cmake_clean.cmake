file(REMOVE_RECURSE
  "CMakeFiles/fig04_sparsity.dir/fig04_sparsity.cc.o"
  "CMakeFiles/fig04_sparsity.dir/fig04_sparsity.cc.o.d"
  "fig04_sparsity"
  "fig04_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
