# Empty compiler generated dependencies file for fig04_sparsity.
# This may be replaced when dependencies are built.
