file(REMOVE_RECURSE
  "CMakeFiles/fig03_mm_sweep.dir/fig03_mm_sweep.cc.o"
  "CMakeFiles/fig03_mm_sweep.dir/fig03_mm_sweep.cc.o.d"
  "fig03_mm_sweep"
  "fig03_mm_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_mm_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
