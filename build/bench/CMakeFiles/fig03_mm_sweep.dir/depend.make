# Empty dependencies file for fig03_mm_sweep.
# This may be replaced when dependencies are built.
