# Empty dependencies file for fig14_elimination.
# This may be replaced when dependencies are built.
