file(REMOVE_RECURSE
  "CMakeFiles/fig14_elimination.dir/fig14_elimination.cc.o"
  "CMakeFiles/fig14_elimination.dir/fig14_elimination.cc.o.d"
  "fig14_elimination"
  "fig14_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
