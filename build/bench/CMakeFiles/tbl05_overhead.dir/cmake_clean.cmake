file(REMOVE_RECURSE
  "CMakeFiles/tbl05_overhead.dir/tbl05_overhead.cc.o"
  "CMakeFiles/tbl05_overhead.dir/tbl05_overhead.cc.o.d"
  "tbl05_overhead"
  "tbl05_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl05_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
