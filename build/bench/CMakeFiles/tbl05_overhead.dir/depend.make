# Empty dependencies file for tbl05_overhead.
# This may be replaced when dependencies are built.
