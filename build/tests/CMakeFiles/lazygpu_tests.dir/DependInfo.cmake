
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dnn_workloads.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_dnn_workloads.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_dnn_workloads.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_exec_semantics.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_exec_semantics.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_exec_semantics.cc.o.d"
  "/root/repo/tests/test_foundation.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_foundation.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_foundation.cc.o.d"
  "/root/repo/tests/test_gemm.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_gemm.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_gemm.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_lazy_mechanics.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_lazy_mechanics.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_lazy_mechanics.cc.o.d"
  "/root/repo/tests/test_mem_timing.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_mem_timing.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_mem_timing.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_suite_workloads.cc" "tests/CMakeFiles/lazygpu_tests.dir/test_suite_workloads.cc.o" "gcc" "tests/CMakeFiles/lazygpu_tests.dir/test_suite_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lazygpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
