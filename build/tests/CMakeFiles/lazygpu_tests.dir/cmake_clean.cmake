file(REMOVE_RECURSE
  "CMakeFiles/lazygpu_tests.dir/test_dnn_workloads.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_dnn_workloads.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_engine.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_engine.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_exec_semantics.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_exec_semantics.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_foundation.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_foundation.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_gemm.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_gemm.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_harness.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_harness.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_isa.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_isa.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_lazy_mechanics.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_lazy_mechanics.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_mem_timing.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_mem_timing.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_smoke.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_smoke.cc.o.d"
  "CMakeFiles/lazygpu_tests.dir/test_suite_workloads.cc.o"
  "CMakeFiles/lazygpu_tests.dir/test_suite_workloads.cc.o.d"
  "lazygpu_tests"
  "lazygpu_tests.pdb"
  "lazygpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazygpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
