# Empty compiler generated dependencies file for lazygpu_tests.
# This may be replaced when dependencies are built.
